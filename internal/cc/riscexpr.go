package cc

import (
	"fmt"
	"strings"

	"risc1/internal/isa"
)

// Expression generation for the RISC back end. genExpr evaluates e into a
// fresh temporary and returns its handle; void calls return -1.

func (g *riscGen) genExpr(e Expr) (tref, error) {
	switch x := e.(type) {
	case *IntLit:
		t := g.pushTemp()
		g.emit("li #%d,r%d", int32(x.Val), g.reg(t))
		return t, nil

	case *StrLit:
		t := g.pushTemp()
		g.emitSymAddr(fmt.Sprintf(".Lstr%d", x.Index), g.reg(t))
		return t, nil

	case *VarRef:
		return g.genLoadVar(x.Decl)

	case *Unary:
		return g.genUnary(x)

	case *Index:
		at, size, err := g.genAddrOf(x)
		if err != nil {
			return -1, err
		}
		r := g.reg(at)
		g.emit("%s (r%d)#0,r%d", loadOp(size), r, r)
		return at, nil

	case *Binary:
		return g.genBinary(x)

	case *Logic, *Cond:
		return g.genValueViaBranches(e)

	case *Assign:
		return g.genStoreVal(x.X, x.Y, true)

	case *IncDec:
		return g.genIncDec(x)

	case *Call:
		return g.genCall(x)
	}
	return -1, errorAt(0, "unknown expression %T", e)
}

func loadOp(size int) string {
	if size == 1 {
		return "ldbu"
	}
	return "ldl"
}

func storeOp(size int) string {
	if size == 1 {
		return "stb"
	}
	return "stl"
}

// emitSymAddr materializes the address of a data symbol: one add off the
// global pointer when gp addressing is on, otherwise a full la pair.
func (g *riscGen) emitSymAddr(sym string, r uint8) {
	if g.useGP {
		g.emit("add r%d,#%s-%d,r%d", GPReg, sym, gpAnchor, r)
	} else {
		g.emit("la %s,r%d", sym, r)
	}
}

func (g *riscGen) genLoadVar(v *VarDecl) (tref, error) {
	t := g.pushTemp()
	r := g.reg(t)
	switch {
	case g.localReg[v] != 0:
		g.emit("mov r%d,r%d", g.localReg[v], r)
	case v.IsGlobal:
		if v.Type.Kind == TypeArray {
			g.emitSymAddr(globalLabel(v), r)
			return t, nil // the array's value is its address
		}
		if g.useGP {
			g.emit("%s (r%d)#%s-%d,r%d", loadOp(v.Type.Size()),
				GPReg, globalLabel(v), gpAnchor, r)
			return t, nil
		}
		g.emit("la %s,r%d", globalLabel(v), r)
		g.emit("%s (r%d)#0,r%d", loadOp(v.Type.Size()), r, r)
	default:
		off, ok := g.localOff[v]
		if !ok {
			return -1, errorAt(v.Line, "variable %s has no storage", v.Name)
		}
		if v.Type.Kind == TypeArray {
			g.emit("add r%d,#%d,r%d", g.conv.sp, off, r)
			return t, nil
		}
		g.emit("%s (r%d)#%d,r%d", loadOp(v.Type.Size()), g.conv.sp, off, r)
	}
	return t, nil
}

func globalLabel(v *VarDecl) string { return "g_" + v.Name }

// genAddrOf computes the byte address of an lvalue (or array/decay) into a
// temp, returning (temp, element size).
func (g *riscGen) genAddrOf(e Expr) (tref, int, error) {
	switch x := e.(type) {
	case *VarRef:
		v := x.Decl
		size := v.Type.Size()
		if v.Type.Kind == TypeArray {
			size = v.Type.Elem.Size()
		}
		t := g.pushTemp()
		r := g.reg(t)
		switch {
		case v.IsGlobal:
			g.emitSymAddr(globalLabel(v), r)
		default:
			off, ok := g.localOff[v]
			if !ok {
				return -1, 0, errorAt(v.Line, "address of register variable %s", v.Name)
			}
			g.emit("add r%d,#%d,r%d", g.conv.sp, off, r)
		}
		return t, size, nil

	case *StrLit:
		t := g.pushTemp()
		g.emitSymAddr(fmt.Sprintf(".Lstr%d", x.Index), g.reg(t))
		return t, 1, nil

	case *Unary:
		switch x.Op {
		case "*":
			t, err := g.genExpr(x.X)
			return t, x.TypeOf().Size(), err
		case "decay":
			t, _, err := g.genAddrOf(x.X)
			return t, x.TypeOf().Elem.Size(), err
		}

	case *Index:
		base, err := g.genExpr(x.Arr) // pointer value
		if err != nil {
			return -1, 0, err
		}
		size := x.TypeOf().Size()
		// Constant index folds into the displacement when it fits.
		if lit, ok := x.Idx.(*IntLit); ok {
			off := lit.Val * int64(size)
			if off >= isa.MinImm13 && off <= isa.MaxImm13 {
				if off != 0 {
					r := g.reg(base)
					g.emit("add r%d,#%d,r%d", r, off, r)
				}
				return base, size, nil
			}
		}
		rb := g.reg(base)
		g.pin(rb)
		ri, ti, err := g.operandReg(x.Idx)
		if err != nil {
			return -1, 0, err
		}
		if size == 4 {
			// Scale into a temp (never in place: ri may be a live local).
			if ti < 0 {
				ti = g.pushTemp()
			}
			g.emit("sll r%d,#2,r%d", ri, g.reg(ti))
			ri = g.reg(ti)
		}
		g.unpin(g.reg(base))
		g.emit("add r%d,r%d,r%d", g.reg(base), ri, g.reg(base))
		if ti >= 0 {
			g.pop(ti)
		}
		return base, size, nil
	}
	return -1, 0, errorAt(0, "cannot take the address of %T", e)
}

// genStore evaluates rhs and stores it into lvalue lv, discarding the value.
func (g *riscGen) genStore(lv Expr, rhs Expr) error {
	_, err := g.genStoreVal(lv, rhs, false)
	return err
}

// genStoreVal is the assignment workhorse. With wantValue it returns a temp
// holding the stored value (char-truncated when the lvalue is char);
// otherwise it returns -1.
func (g *riscGen) genStoreVal(lv Expr, rhs Expr, wantValue bool) (tref, error) {
	if x, ok := lv.(*VarRef); ok {
		if r, ok := g.localReg[x.Decl]; ok {
			rv, t, err := g.operandReg(rhs)
			if err != nil {
				return -1, err
			}
			if x.Decl.Type.Kind == TypeChar {
				g.emit("and r%d,#255,r%d", rv, r)
			} else if rv != r {
				g.emit("mov r%d,r%d", rv, r)
			}
			if wantValue {
				if t < 0 {
					t = g.pushTemp()
				}
				g.emit("mov r%d,r%d", r, g.reg(t))
				return t, nil
			}
			if t >= 0 {
				g.pop(t)
			}
			return -1, nil
		}
	}
	// Global scalars store through the global pointer in one instruction.
	if x, ok := lv.(*VarRef); ok && x.Decl.IsGlobal && x.Decl.Type.IsScalar() && g.useGP {
		t, err := g.genExpr(rhs)
		if err != nil {
			return -1, err
		}
		rv := g.reg(t)
		if x.Decl.Type.Kind == TypeChar {
			g.emit("and r%d,#255,r%d", rv, rv)
		}
		g.emit("%s r%d,(r%d)#%s-%d", storeOp(x.Decl.Type.Size()),
			g.reg(t), GPReg, globalLabel(x.Decl), gpAnchor)
		if wantValue {
			return t, nil
		}
		g.pop(t)
		return -1, nil
	}

	// Storing constant zero reads the hardware zero register directly.
	if isZero(rhs) && !wantValue {
		at, size, err := g.genAddrOf(lv)
		if err != nil {
			return -1, err
		}
		g.emit("%s r0,(r%d)#0", storeOp(size), g.reg(at))
		g.pop(at)
		return -1, nil
	}

	// Memory lvalue: compute address, then the value, then store.
	at, size, err := g.genAddrOf(lv)
	if err != nil {
		return -1, err
	}
	g.pin(g.reg(at))
	vt, err := g.genExpr(rhs)
	if err != nil {
		return -1, err
	}
	if size == 1 {
		rv := g.reg(vt)
		g.emit("and r%d,#255,r%d", rv, rv)
	}
	g.unpin(g.reg(at))
	g.emit("%s r%d,(r%d)#0", storeOp(size), g.reg(vt), g.reg(at))
	if wantValue {
		// Keep the value: move it down into at's stack position.
		if g.reg(vt) != g.reg(at) {
			g.emit("mov r%d,r%d", g.reg(vt), g.reg(at))
		}
		g.pop(vt)
		return at, nil
	}
	g.pop(vt)
	g.pop(at)
	return -1, nil
}

func (g *riscGen) genUnary(x *Unary) (tref, error) {
	switch x.Op {
	case "-":
		t, err := g.genExpr(x.X)
		if err != nil {
			return -1, err
		}
		r := g.reg(t)
		g.emit("sub r0,r%d,r%d", r, r)
		return t, nil
	case "~":
		t, err := g.genExpr(x.X)
		if err != nil {
			return -1, err
		}
		r := g.reg(t)
		g.emit("xor r%d,#-1,r%d", r, r)
		return t, nil
	case "!":
		return g.genValueViaBranches(x)
	case "*":
		t, err := g.genExpr(x.X)
		if err != nil {
			return -1, err
		}
		r := g.reg(t)
		g.emit("%s (r%d)#0,r%d", loadOp(x.TypeOf().Size()), r, r)
		return t, nil
	case "&", "decay":
		t, _, err := g.genAddrOf(x.X)
		return t, err
	}
	return -1, errorAt(0, "unknown unary %q", x.Op)
}

func (g *riscGen) genBinary(b *Binary) (tref, error) {
	if _, isCmp := comparisonCond(b); isCmp {
		return g.genValueViaBranches(b)
	}
	switch b.Op {
	case "*", "/", "%":
		return g.genMulDiv(b)
	}

	op := map[string]string{
		"+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor",
		"<<": "sll", ">>": "sra",
	}[b.Op]
	if op == "" {
		return -1, errorAt(0, "unknown binary %q", b.Op)
	}

	rx, tx, err := g.operandReg(b.X)
	if err != nil {
		return -1, err
	}
	if tx >= 0 {
		g.pin(rx)
	}

	// Second operand: a (scale-folded) immediate, a direct register, or a
	// temp. Pointer scaling of a non-literal lands in a temp via sll.
	var s2 string
	ty := tref(-1)
	if lit, ok := b.Y.(*IntLit); ok && b.Scale >= 0 {
		v := lit.Val
		if b.Scale > 0 {
			v *= int64(b.Scale)
		}
		if v >= isa.MinImm13 && v <= isa.MaxImm13 {
			s2 = fmt2("#%d", v)
		}
	}
	if s2 == "" {
		switch {
		case b.Scale == 4:
			ty, err = g.genExpr(b.Y)
			if err != nil {
				return -1, err
			}
			ry := g.reg(ty)
			g.emit("sll r%d,#2,r%d", ry, ry)
			s2 = fmt2("r%d", ry)
		default:
			s2, ty, err = g.genS2(b.Y)
			if err != nil {
				return -1, err
			}
		}
	}

	// Destination: reuse X's temp, else write over Y's temp, else fresh.
	var dst tref
	switch {
	case tx >= 0:
		g.unpin(rx)
		rx = g.reg(tx) // re-query: Y's evaluation may have spilled it
		dst = tx
	case ty >= 0:
		dst = ty
	default:
		dst = g.pushTemp()
	}
	g.emit("%s r%d,%s,r%d", op, rx, s2, g.reg(dst))
	if b.Scale < 0 && -b.Scale == 4 {
		// Pointer difference: byte delta to element count.
		g.emit("sra r%d,#2,r%d", g.reg(dst), g.reg(dst))
	}
	if ty >= 0 && ty != dst {
		g.pop(ty)
	}
	return dst, nil
}

// genMulDiv lowers *, / and %: powers of two reduce to shift sequences
// (with the sign-bias correction C's truncating division needs); everything
// else calls the software routines (RISC I has no multiply or divide
// hardware — the paper's compiler did the same).
func (g *riscGen) genMulDiv(b *Binary) (tref, error) {
	if lit, ok := b.Y.(*IntLit); ok {
		if sh := log2(lit.Val); sh >= 0 {
			switch b.Op {
			case "*":
				t, err := g.genExpr(b.X)
				if err != nil {
					return -1, err
				}
				r := g.reg(t)
				if sh > 0 {
					g.emit("sll r%d,#%d,r%d", r, sh, r)
				}
				return t, nil
			case "/", "%":
				if sh == 0 { // /1 and %1
					if b.Op == "%" {
						t := g.pushTemp()
						g.emit("add r0,#0,r%d", g.reg(t))
						return t, nil
					}
					return g.genExpr(b.X)
				}
				// Truncating division by 2^sh: add (2^sh - 1) when the
				// dividend is negative, then shift arithmetically.
				//   t = x >> 31 (sign mask); t >>= (32-sh) logical
				//   q = (x + t) >> sh
				rx, tx, err := g.operandReg(b.X)
				if err != nil {
					return -1, err
				}
				if tx >= 0 {
					g.pin(rx)
				}
				t := g.pushTemp()
				rt := g.reg(t)
				g.emit("sra r%d,#31,r%d", rx, rt)
				g.emit("srl r%d,#%d,r%d", rt, 32-sh, rt)
				g.emit("add r%d,r%d,r%d", rx, rt, rt)
				if b.Op == "/" {
					g.emit("sra r%d,#%d,r%d", rt, sh, rt)
				} else {
					// x % 2^sh = x - (x / 2^sh) << sh.
					g.emit("sra r%d,#%d,r%d", rt, sh, rt)
					g.emit("sll r%d,#%d,r%d", rt, sh, rt)
					g.emit("sub r%d,r%d,r%d", rx, rt, rt)
				}
				if tx >= 0 {
					g.unpin(g.reg(tx))
					// Sink the result into X's temp position.
					if g.reg(t) != g.reg(tx) {
						g.emit("mov r%d,r%d", g.reg(t), g.reg(tx))
					}
					g.pop(t)
					return tx, nil
				}
				return t, nil
			}
		}
	}
	var fn string
	switch b.Op {
	case "*":
		fn, g.usesMul = "__mulsi", true
	case "/":
		fn, g.usesDiv = "__divsi", true
	default:
		fn, g.usesMod = "__modsi", true
	}
	call := &Call{exprBase: exprBase{intType},
		Args: []Expr{b.X, b.Y}, runtimeName: fn}
	return g.genCall(call)
}

func log2(v int64) int {
	if v <= 0 || v&(v-1) != 0 {
		return -1
	}
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// genValueViaBranches materializes a boolean-producing expression (!, the
// comparisons, && and ||) or a ?: into a register using branches.
//
// Control flow diverges here, so all live temporaries are parked in frame
// slots first and the two paths meet through a frame slot: a register-only
// meeting point would require both compile-time paths to leave the register
// state identical, which nested calls (which clobber all scratch registers)
// make impossible to guarantee.
func (g *riscGen) genValueViaBranches(e Expr) (tref, error) {
	g.spillAllTemps()
	slot := g.allocSlot()
	off := g.slotOff(slot)

	if c, ok := e.(*Cond); ok {
		elseL := g.newLabel("celse")
		endL := g.newLabel("cend")
		if err := g.genBranch(c.C, elseL, false); err != nil {
			return -1, err
		}
		ta, err := g.genExpr(c.A)
		if err != nil {
			return -1, err
		}
		g.emit("stl r%d,(r%d)#%d", g.reg(ta), g.conv.sp, off)
		g.pop(ta)
		g.emit("b %s", endL)
		g.emit("nop")
		g.label(elseL)
		tb, err := g.genExpr(c.B)
		if err != nil {
			return -1, err
		}
		g.emit("stl r%d,(r%d)#%d", g.reg(tb), g.conv.sp, off)
		g.pop(tb)
		g.label(endL)
	} else {
		trueL := g.newLabel("btrue")
		endL := g.newLabel("bend")
		if err := g.genBranch(e, trueL, true); err != nil {
			return -1, err
		}
		g.emit("stl r0,(r%d)#%d", g.conv.sp, off)
		g.emit("b %s", endL)
		g.emit("nop")
		g.label(trueL)
		one := g.pushTemp()
		g.emit("add r0,#1,r%d", g.reg(one))
		g.emit("stl r%d,(r%d)#%d", g.reg(one), g.conv.sp, off)
		g.pop(one)
		g.label(endL)
	}

	t := g.pushTemp()
	g.emit("ldl (r%d)#%d,r%d", g.conv.sp, off, g.reg(t))
	g.freeSlots = append(g.freeSlots, slot)
	return t, nil
}

func (g *riscGen) genIncDec(x *IncDec) (tref, error) {
	switch lv := x.X.(type) {
	case *VarRef:
		if r, ok := g.localReg[lv.Decl]; ok {
			t := g.pushTemp()
			rt := g.reg(t)
			if x.Post {
				g.emit("mov r%d,r%d", r, rt)
				g.emit("add r%d,#%d,r%d", r, x.Delta, r)
			} else {
				g.emit("add r%d,#%d,r%d", r, x.Delta, r)
				g.emit("mov r%d,r%d", r, rt)
			}
			return t, nil
		}
	}
	// Memory lvalue.
	at, size, err := g.genAddrOf(x.X)
	if err != nil {
		return -1, err
	}
	ra := g.reg(at)
	g.pin(ra)
	t := g.pushTemp()
	rt := g.reg(t)
	g.emit("%s (r%d)#0,r%d", loadOp(size), ra, rt)
	if x.Post {
		// Store the updated value but return the original: use one more
		// scratch move through the address register after the store.
		g.emit("add r%d,#%d,r%d", rt, x.Delta, rt)
		g.emit("%s r%d,(r%d)#0", storeOp(size), rt, ra)
		g.emit("sub r%d,#%d,r%d", rt, x.Delta, rt)
	} else {
		g.emit("add r%d,#%d,r%d", rt, x.Delta, rt)
		g.emit("%s r%d,(r%d)#0", storeOp(size), rt, ra)
	}
	g.unpin(ra)
	// Move the result into the bottom temp position (at) so the stack
	// discipline holds: pop t, overwrite at's register.
	if g.reg(at) != rt {
		g.emit("mov r%d,r%d", rt, g.reg(at))
	}
	g.pop(t)
	return at, nil
}

// ---------- calls ----------

func containsCall(e Expr) bool {
	switch v := e.(type) {
	case nil, *IntLit, *StrLit, *VarRef:
		return false
	case *Unary:
		return containsCall(v.X)
	case *Binary:
		// Multiplication and division lower to runtime calls.
		if v.Op == "*" || v.Op == "/" || v.Op == "%" {
			return true
		}
		return containsCall(v.X) || containsCall(v.Y)
	case *Logic:
		return containsCall(v.X) || containsCall(v.Y)
	case *Index:
		return containsCall(v.Arr) || containsCall(v.Idx)
	case *Cond:
		return containsCall(v.C) || containsCall(v.A) || containsCall(v.B)
	case *Assign:
		return containsCall(v.X) || containsCall(v.Y)
	case *IncDec:
		return containsCall(v.X)
	case *Call:
		return true
	}
	return true
}

// genSMPBuiltin lowers the SMP builtins to their runtime routines. The
// routines are written for the windowed convention (they keep spin-loop
// state in LOCAL registers, and spawn's inline fallback leans on the window
// overlap), so the flat ablation target rejects them with a typed error.
func (g *riscGen) genSMPBuiltin(c *Call) (tref, error) {
	if !g.windowed {
		return -1, &CompileError{Line: c.Line,
			Msg: c.Builtin + " requires the windowed risc target"}
	}
	switch c.Builtin {
	case "join":
		g.usesJoin = true
		return g.genCall(&Call{exprBase: exprBase{voidType},
			Args: c.Args, runtimeName: "__join", Line: c.Line})
	case "lock":
		g.usesLock = true
		return g.genCall(&Call{exprBase: exprBase{voidType},
			Args: c.Args, runtimeName: "__lock", Line: c.Line})
	case "unlock":
		g.usesUnlock = true
		return g.genCall(&Call{exprBase: exprBase{voidType},
			Args: c.Args, runtimeName: "__unlock", Line: c.Line})
	}

	// spawn(fn, x) -> __spawn(&fn, x), the function address materialized
	// with la. The argument parks in a frame slot first (mirroring the
	// general call path) so its evaluation cannot disturb the staging.
	g.usesSpawn = true
	g.spillAllTemps()
	t0, err := g.genExpr(c.Args[0])
	if err != nil {
		return -1, err
	}
	slot := g.allocSlot()
	g.emit("stl r%d,(r%d)#%d", g.reg(t0), g.conv.sp, g.slotOff(slot))
	g.pop(t0)
	fnR := g.conv.argOut
	argR := g.conv.argOut + 1
	g.removeFromFree(fnR)
	g.emit("la %s,r%d", c.Func.Name, fnR)
	g.pin(fnR)
	g.removeFromFree(argR)
	g.emit("ldl (r%d)#%d,r%d", g.conv.sp, g.slotOff(slot), argR)
	g.pin(argR)
	g.freeSlots = append(g.freeSlots, slot)
	g.emit("callr r%d,__spawn", g.conv.link)
	g.emit("nop")
	g.unpin(fnR)
	g.addToFree(fnR)
	g.unpin(argR)
	g.addToFree(argR)
	t := g.pushTemp()
	if r := g.reg(t); r != g.conv.retIn {
		g.emit("mov r%d,r%d", g.conv.retIn, r)
	}
	return t, nil
}

func (g *riscGen) genCall(c *Call) (tref, error) {
	switch c.Builtin {
	case "putint", "putchar":
		r, t, err := g.operandReg(c.Args[0])
		if err != nil {
			return -1, err
		}
		port := -256 // 0xFFFFFF00: putchar
		if c.Builtin == "putint" {
			port = -252 // 0xFFFFFF04
		}
		g.emit("stl r%d,(r0)#%d", r, port)
		if t >= 0 {
			g.pop(t)
		}
		return -1, nil
	case "coreid", "ncores":
		// Inline loads from the SMP control page; without an SMP
		// controller the device answers 0 and 1, so single-core programs
		// need no special casing.
		off := -512 // 0xFFFFFE00: COREID
		if c.Builtin == "ncores" {
			off = -508 // 0xFFFFFE04: NCORES
		}
		t := g.pushTemp()
		g.emit("ldl (r0)#%d,r%d", off, g.reg(t))
		return t, nil
	case "spawn", "join", "lock", "unlock":
		return g.genSMPBuiltin(c)
	}

	name := c.runtimeName
	isVoid := c.TypeOf().Kind == TypeVoid
	if name == "" {
		name = c.Func.Name
		isVoid = c.Func.Ret.Kind == TypeVoid
	}

	// Any temporaries live across the call must survive the scratch
	// clobber; park them in the frame.
	g.spillAllTemps()

	simple := true
	for _, a := range c.Args {
		if containsCall(a) {
			simple = false
			break
		}
	}

	if simple {
		// Evaluate each argument directly into its outgoing register,
		// reserving already-staged ones.
		for i, a := range c.Args {
			target := g.conv.argOut + uint8(i)
			g.removeFromFree(target)
			r, t, err := g.operandReg(a)
			if err != nil {
				return -1, err
			}
			if r != target {
				g.emit("mov r%d,r%d", r, target)
			}
			if t >= 0 {
				g.pop(t)
			}
		}
	} else {
		// General path: evaluate all arguments to frame slots, then
		// load them into the outgoing registers.
		slots := make([]int, len(c.Args))
		for i, a := range c.Args {
			t, err := g.genExpr(a)
			if err != nil {
				return -1, err
			}
			slots[i] = g.allocSlot()
			g.emit("stl r%d,(r%d)#%d", g.reg(t), g.conv.sp, g.slotOff(slots[i]))
			g.pop(t)
		}
		for i := range c.Args {
			target := g.conv.argOut + uint8(i)
			g.removeFromFree(target)
			g.emit("ldl (r%d)#%d,r%d", g.conv.sp, g.slotOff(slots[i]), target)
			g.pin(target)
		}
		for _, s := range slots {
			g.freeSlots = append(g.freeSlots, s)
		}
	}

	g.emit("callr r%d,%s", g.conv.link, name)
	g.emit("nop")

	// Release argument registers back to the pool.
	for i := range c.Args {
		target := g.conv.argOut + uint8(i)
		g.unpin(target)
		g.addToFree(target)
	}
	if isVoid {
		return -1, nil
	}
	t := g.pushTemp()
	if r := g.reg(t); r != g.conv.retIn {
		g.emit("mov r%d,r%d", g.conv.retIn, r)
	}
	return t, nil
}

func (g *riscGen) removeFromFree(r uint8) {
	for i, f := range g.freeRegs {
		if f == r {
			g.freeRegs = append(g.freeRegs[:i], g.freeRegs[i+1:]...)
			return
		}
	}
}

func (g *riscGen) addToFree(r uint8) {
	for _, f := range g.freeRegs {
		if f == r {
			return
		}
	}
	g.freeRegs = append(g.freeRegs, r)
}

// ---------- data section and runtime ----------

func (g *riscGen) genData() {
	// __data_start separates code from data so the size experiments can
	// measure program (code) bytes the way the paper did.
	g.out.WriteString("\n; ---- data ----\n\t.align 4\n__data_start:\n")
	for _, v := range g.prog.Globals {
		fmt.Fprintf(&g.out, "%s:\n", globalLabel(v))
		g.emitInit(v)
		g.out.WriteString("\t.align 4\n")
	}
	for i, s := range g.prog.Strings {
		fmt.Fprintf(&g.out, ".Lstr%d:\t.asciz %q\n\t.align 4\n", i, s)
	}
}

func (g *riscGen) emitInit(v *VarDecl) {
	switch {
	case v.InitString != "":
		fmt.Fprintf(&g.out, "\t.asciz %q\n", v.InitString)
		if pad := v.Type.Len - len(v.InitString) - 1; pad > 0 {
			fmt.Fprintf(&g.out, "\t.space %d\n", pad)
		}
	case len(v.InitInts) > 0:
		if v.Type.Kind == TypeArray && v.Type.Elem.Kind == TypeChar {
			for _, n := range v.InitInts {
				fmt.Fprintf(&g.out, "\t.byte %d\n", uint8(n))
			}
			if pad := v.Type.Len - len(v.InitInts); pad > 0 {
				fmt.Fprintf(&g.out, "\t.space %d\n", pad)
			}
			return
		}
		vals := make([]string, len(v.InitInts))
		for i, n := range v.InitInts {
			vals[i] = fmt2("%d", int32(n))
		}
		fmt.Fprintf(&g.out, "\t.word %s\n", strings.Join(vals, ", "))
		if v.Type.Kind == TypeArray {
			if pad := 4 * (v.Type.Len - len(v.InitInts)); pad > 0 {
				fmt.Fprintf(&g.out, "\t.space %d\n", pad)
			}
		}
	default:
		fmt.Fprintf(&g.out, "\t.space %d\n", v.Type.Size())
	}
}
