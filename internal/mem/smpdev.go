package mem

import "fmt"

// SMP device pages. Two 256-byte pages sit just below the console device:
//
//	0xFFFF_FD00  lock page: 64 test-and-set words. A 32-bit load returns the
//	             word's previous value and atomically sets it to 1; a 32-bit
//	             store writes the word (store 0 to release). Releasing a lock
//	             that is not held is a defined fault: the store errors with a
//	             *LockFault, which the CPUs surface like any memory fault.
//	             Atomicity comes for free from the SMP scheduler: cores
//	             interleave only at instruction boundaries, and the load's
//	             read-modify-write is one instruction.
//	0xFFFF_FE00  control page: core identity and the spawn/join mailbox,
//	             backed by an SMPController (the smp scheduler). Without a
//	             controller the page degrades gracefully to single-core
//	             answers: COREID=0, NCORES=1, spawn yields handle -1 (so the
//	             runtime falls back to an inline call), joins report done.
//
// Only naturally aligned 32-bit accesses have device semantics; narrower
// accesses in these pages fault like ordinary out-of-range RAM touches.
// Device traffic counts toward Reads/Writes exactly like console traffic.
const (
	LockBase  = 0xFFFF_FD00
	LockCount = 64

	SMPBase     = 0xFFFF_FE00
	SMPCoreID   = SMPBase + 0x00 // load: this core's id
	SMPNumCores = SMPBase + 0x04 // load: cores in the machine
	SMPSpawnArg = SMPBase + 0x08 // store: argument for the next spawn
	SMPSpawnFn  = SMPBase + 0x0C // store: fn addr, starts a worker; load: handle
	SMPJoinBase = SMPBase + 0x40 // load JOINBASE+4*h: 1 while handle h runs
	SMPJoinMax  = 16
)

// SMPController is the scheduler-side backing for the control page. The smp
// package implements it per core; per-core spawn state lives behind the
// controller because a scheduling quantum may split the store-arg/store-fn/
// load-handle sequence across rounds.
type SMPController interface {
	CoreID() uint32
	NumCores() uint32
	// SpawnArg stages the argument for the next Spawn from this core.
	SpawnArg(v uint32)
	// Spawn launches fn on a free core (or records failure); the resulting
	// handle is read back via LastSpawn.
	Spawn(fn uint32)
	// LastSpawn returns the handle from this core's most recent Spawn,
	// or 0xFFFF_FFFF if it failed (no free core).
	LastSpawn() uint32
	// Running reports 1 while the worker behind handle h is still running.
	Running(h uint32) uint32
}

// SetSMP installs (or, with nil, removes) the SMP controller backing the
// control page for the core about to access this memory view.
func (m *Memory) SetSMP(c SMPController) { m.smp = c }

// LockFault reports a release (store of 0) to a lock-page word that was not
// held. Silently accepting such a store would let a buggy guest "unlock" a
// lock it never took — and mask the double-release bugs the concurrency
// lint hunts — so the bus makes it a hard fault instead.
type LockFault struct {
	Addr uint32 // faulting device address
	Lock int    // lock index within the page
}

func (f *LockFault) Error() string {
	return fmt.Sprintf("mem: release of lock %d at %#08x, which is not held",
		f.Lock, f.Addr)
}

// inDevicePages reports whether addr falls in the SMP device window.
func (m *Memory) inDevicePages(addr uint32) bool {
	return addr >= LockBase && addr < ConsoleBase
}

func (m *Memory) deviceLoad32(addr uint32) (uint32, error) {
	m.Reads += 4
	if addr >= LockBase && addr < LockBase+4*LockCount {
		i := (addr - LockBase) / 4
		old := m.locks[i]
		m.locks[i] = 1
		if old == 0 && m.obs != nil {
			m.obs.ObserveLock(int(i), true)
		}
		return old, nil
	}
	switch addr {
	case SMPCoreID:
		if m.smp == nil {
			return 0, nil
		}
		return m.smp.CoreID(), nil
	case SMPNumCores:
		if m.smp == nil {
			return 1, nil
		}
		return m.smp.NumCores(), nil
	case SMPSpawnFn:
		if m.smp == nil {
			return 0xFFFF_FFFF, nil
		}
		return m.smp.LastSpawn(), nil
	}
	if addr >= SMPJoinBase && addr < SMPJoinBase+4*SMPJoinMax {
		if m.smp == nil {
			return 0, nil
		}
		h := (addr - SMPJoinBase) / 4
		r := m.smp.Running(h)
		if r == 0 && m.obs != nil {
			m.obs.ObserveJoinDone(h)
		}
		return r, nil
	}
	// Undefined device words read as zero, like a real bus with no card.
	return 0, nil
}

func (m *Memory) deviceStore32(addr, v uint32) error {
	m.Writes += 4
	if addr >= LockBase && addr < LockBase+4*LockCount {
		i := (addr - LockBase) / 4
		old := m.locks[i]
		if v == 0 && old == 0 {
			return &LockFault{Addr: addr, Lock: int(i)}
		}
		m.locks[i] = v
		if m.obs != nil {
			if v == 0 {
				m.obs.ObserveLock(int(i), false)
			} else if old == 0 {
				m.obs.ObserveLock(int(i), true)
			}
		}
		return nil
	}
	switch addr {
	case SMPSpawnArg:
		if m.smp != nil {
			m.smp.SpawnArg(v)
		}
	case SMPSpawnFn:
		if m.smp != nil {
			m.smp.Spawn(v)
		}
	default:
		// Stores to other device addresses are ignored, like a real bus.
	}
	return nil
}
