package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTrip32(t *testing.T) {
	m := New(1024)
	f := func(addrRaw uint16, v uint32) bool {
		addr := uint32(addrRaw) % 1020
		addr &^= 3
		if err := m.Store32(addr, v); err != nil {
			return false
		}
		got, err := m.Load32(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEndianness(t *testing.T) {
	m := New(16)
	if err := m.Store32(0, 0x11223344); err != nil {
		t.Fatal(err)
	}
	b, _ := m.Bytes(0, 4)
	want := []byte{0x11, 0x22, 0x33, 0x44}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("big-endian layout wrong: % x", b)
		}
	}
	h, _ := m.Load16(0)
	if h != 0x1122 {
		t.Errorf("Load16(0) = %#04x, want 0x1122", h)
	}
	lo, _ := m.Load8(3)
	if lo != 0x44 {
		t.Errorf("Load8(3) = %#02x, want 0x44", lo)
	}
}

func TestSubWordStores(t *testing.T) {
	m := New(8)
	m.Store32(0, 0xAABBCCDD)
	if err := m.Store8(1, 0x01); err != nil {
		t.Fatal(err)
	}
	if err := m.Store16(2, 0x0203); err != nil {
		t.Fatal(err)
	}
	w, _ := m.Load32(0)
	if w != 0xAA010203 {
		t.Errorf("word after sub-word stores = %#08x, want 0xaa010203", w)
	}
}

func TestAlignmentFaults(t *testing.T) {
	m := New(64)
	cases := []struct {
		name string
		err  error
	}{
		{"load32", func() error { _, err := m.Load32(2); return err }()},
		{"load16", func() error { _, err := m.Load16(1); return err }()},
		{"store32", m.Store32(5, 1)},
		{"store16", m.Store16(3, 1)},
		{"fetch", func() error { _, err := m.Fetch32(6); return err }()},
	}
	for _, c := range cases {
		var f *Fault
		if !errors.As(c.err, &f) || !f.Misalign {
			t.Errorf("%s: expected misalignment fault, got %v", c.name, c.err)
		}
	}
}

func TestOutOfBounds(t *testing.T) {
	m := New(16)
	if _, err := m.Load32(16); err == nil {
		t.Error("load past end succeeded")
	}
	if err := m.Store8(16, 1); err == nil {
		t.Error("store past end succeeded")
	}
	if _, err := m.Load32(0xFFFFF000); err == nil {
		t.Error("load from unmapped high address (below console) succeeded")
	}
	// Wraparound attempt: addr+size overflowing 32 bits must fault.
	// (Just below LockBase — the SMP device pages above it are mapped.)
	if _, err := m.Load32(LockBase - 4); err == nil {
		t.Error("near-wraparound load succeeded")
	}
}

func TestConsole(t *testing.T) {
	m := New(16)
	for _, ch := range []byte("hi ") {
		if err := m.Store32(ConsolePutc, uint32(ch)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Store32(ConsolePutInt, uint32(0x80000000)); err != nil {
		t.Fatal(err)
	}
	if got := m.Console(); got != "hi -2147483648" {
		t.Errorf("console = %q", got)
	}
	status, err := m.Load32(ConsoleStatus)
	if err != nil || status != 1 {
		t.Errorf("console status = %d, %v; want 1, nil", status, err)
	}
	// Stores to unknown device addresses are ignored, not faults.
	if err := m.Store32(ConsoleBase+0x40, 7); err != nil {
		t.Errorf("store to unused device address errored: %v", err)
	}
}

func TestTrafficCounters(t *testing.T) {
	m := New(64)
	m.Store32(0, 1) // 4 write bytes
	m.Store8(8, 1)  // 1
	m.Load32(0)     // 4 read bytes
	m.Load16(0)     // 2
	m.Load8(0)      // 1
	m.Fetch32(0)    // fetches must not count as data traffic
	if m.Writes != 5 || m.Reads != 7 {
		t.Errorf("traffic = %d writes, %d reads; want 5, 7", m.Writes, m.Reads)
	}
	m.ResetCounters()
	if m.Writes != 0 || m.Reads != 0 {
		t.Error("ResetCounters did not zero counters")
	}
}

func TestLoadProgram(t *testing.T) {
	m := New(8)
	if err := m.LoadProgram(2, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	b, _ := m.Bytes(0, 8)
	if b[2] != 1 || b[3] != 2 || b[4] != 3 {
		t.Errorf("program bytes not placed: % x", b)
	}
	if err := m.LoadProgram(6, []byte{1, 2, 3}); err == nil {
		t.Error("overlong program load succeeded")
	}
	if _, err := m.Bytes(6, 4); err == nil {
		t.Error("Bytes past end succeeded")
	}
}

func TestFaultMessages(t *testing.T) {
	_, err := New(4).Load32(1)
	if err == nil || err.Error() == "" {
		t.Fatal("fault has no message")
	}
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatal("error is not a *Fault")
	}
	if f.Kind.String() != "load" || AccessStore.String() != "store" || AccessFetch.String() != "fetch" {
		t.Error("AccessKind strings wrong")
	}
}
