// Package mem provides the byte-addressable, big-endian memory used by both
// simulated machines (RISC I and the CX CISC comparator), including a small
// memory-mapped console device that benchmark programs use to emit results.
package mem

import (
	"fmt"
	"strconv"
	"strings"
)

// Console is the memory-mapped output device. A 32-bit store to ConsolePutc
// appends the low byte to the console; a store to ConsolePutInt appends the
// decimal rendering of the word. Loads from ConsoleStatus read 1 (always
// ready). These addresses sit at the very top of the address space, far above
// any RAM a simulation configures.
const (
	ConsoleBase   = 0xFFFF_FF00
	ConsolePutc   = ConsoleBase + 0x0
	ConsolePutInt = ConsoleBase + 0x4
	ConsoleStatus = ConsoleBase + 0x8
)

// DefaultConsoleLimit bounds the console device's buffered output. The suite
// benchmarks print a handful of bytes, so the generous 1 MiB default never
// affects the reproduction; it exists so a guest program in a tight PutInt
// loop cannot grow a long-lived process without bound. Output beyond the
// limit is dropped and the buffer is marked truncated.
const DefaultConsoleLimit = 1 << 20

// AccessKind distinguishes the failure modes a memory access can hit.
type AccessKind uint8

// Access kinds reported in Fault errors.
const (
	AccessLoad AccessKind = iota
	AccessStore
	AccessFetch
)

func (k AccessKind) String() string {
	switch k {
	case AccessLoad:
		return "load"
	case AccessStore:
		return "store"
	case AccessFetch:
		return "fetch"
	}
	return "access"
}

// Fault describes an illegal memory access: out of bounds, misaligned, or
// injected by a FaultPlan.
type Fault struct {
	Kind     AccessKind
	Addr     uint32
	Size     int
	Misalign bool
	OutOfMem bool
	Injected bool
}

func (f *Fault) Error() string {
	switch {
	case f.Injected:
		return fmt.Sprintf("mem: injected %s fault at %#08x", f.Kind, f.Addr)
	case f.Misalign:
		return fmt.Sprintf("mem: misaligned %d-byte %s at %#08x", f.Size, f.Kind, f.Addr)
	case f.OutOfMem:
		return fmt.Sprintf("mem: %s at %#08x outside memory", f.Kind, f.Addr)
	default:
		return fmt.Sprintf("mem: bad %s at %#08x", f.Kind, f.Addr)
	}
}

// FaultPlan injects memory failures for robustness testing: the trap paths of
// DESIGN.md §7 (bus errors, poisoned devices, flaky cells) become exercisable
// from tests without hand-crafting a guest program that misbehaves. A plan
// fires as a *Fault with Injected set, which the CPUs surface like any other
// memory fault.
type FaultPlan struct {
	// FailNthRead faults the Nth data load after the plan is armed
	// (1-based; 0 disables). Each LoadN call counts as one read.
	FailNthRead uint64
	// FailNthWrite faults the Nth data store likewise.
	FailNthWrite uint64
	// PoisonLo/PoisonHi fault every data access overlapping the address
	// range [PoisonLo, PoisonHi). An empty range (Lo >= Hi) poisons nothing.
	PoisonLo, PoisonHi uint32
	// PoisonFetch extends the poisoned range to instruction fetches.
	PoisonFetch bool

	reads, writes uint64 // accesses observed since the plan was armed
}

// poisoned reports whether [addr, addr+size) overlaps the poison range.
func (p *FaultPlan) poisoned(addr uint32, size int) bool {
	return p.PoisonLo < p.PoisonHi && addr < p.PoisonHi && addr+uint32(size) > p.PoisonLo
}

// SetFaultPlan arms (or, with nil, disarms) fault injection. The plan's
// access counters start from zero at arming time.
func (m *Memory) SetFaultPlan(p *FaultPlan) {
	if p != nil {
		p.reads, p.writes = 0, 0
	}
	m.fault = p
}

// injectFault applies the armed plan to one access, returning the injected
// fault if the plan says this access fails.
func (m *Memory) injectFault(kind AccessKind, addr uint32, size int) error {
	p := m.fault
	if p == nil {
		return nil
	}
	switch kind {
	case AccessLoad:
		p.reads++
		if p.reads == p.FailNthRead {
			return &Fault{Kind: kind, Addr: addr, Size: size, Injected: true}
		}
	case AccessStore:
		p.writes++
		if p.writes == p.FailNthWrite {
			return &Fault{Kind: kind, Addr: addr, Size: size, Injected: true}
		}
	case AccessFetch:
		if !p.PoisonFetch {
			return nil
		}
	}
	if p.poisoned(addr, size) {
		return &Fault{Kind: kind, Addr: addr, Size: size, Injected: true}
	}
	return nil
}

// Memory is a flat big-endian RAM with the console device mapped on top.
// All multi-byte accesses must be naturally aligned, per the RISC I rule
// that alignment keeps the memory interface single-cycle.
type Memory struct {
	ram          []byte
	console      strings.Builder
	consoleLimit int  // bytes the console retains before dropping output
	consoleTrunc bool // some console output was dropped at the limit
	consoleSink  func(chunk string)

	// Reads counts data loads, Writes data stores, in bytes, for the
	// memory-traffic experiments (E5, E9). Fetch traffic is counted by
	// the CPUs themselves since they know instruction boundaries.
	Reads  uint64
	Writes uint64

	// Write watch: watchFn is called after any store that modifies RAM in
	// [watchLo, watchHi). The CPUs watch their code segment to invalidate
	// predecoded instructions when a program modifies itself.
	watchLo, watchHi uint32
	watchFn          func(addr uint32, size int)

	// fault, when non-nil, injects failures per its plan.
	fault *FaultPlan

	// obs, when non-nil, observes completed data accesses and lock-page
	// transitions (see AccessObserver). The race detector installs one.
	obs AccessObserver

	// locks backs the test-and-set lock page; smp, when non-nil, backs the
	// SMP control page (see smpdev.go).
	locks [LockCount]uint32
	smp   SMPController
}

// New returns a memory with size bytes of RAM starting at address 0.
func New(size int) *Memory {
	return &Memory{ram: make([]byte, size), consoleLimit: DefaultConsoleLimit}
}

// Size returns the RAM size in bytes.
func (m *Memory) Size() int { return len(m.ram) }

// Console returns everything written to the console device so far (up to
// the console limit; see ConsoleTruncated).
func (m *Memory) Console() string { return m.console.String() }

// ConsoleTruncated reports whether console output was dropped because the
// buffer reached its limit.
func (m *Memory) ConsoleTruncated() bool { return m.consoleTrunc }

// SetConsoleLimit caps the console buffer at n bytes; n <= 0 restores
// DefaultConsoleLimit. Lowering the limit below what is already buffered
// keeps the existing output and drops only subsequent writes.
func (m *Memory) SetConsoleLimit(n int) {
	if n <= 0 {
		n = DefaultConsoleLimit
	}
	m.consoleLimit = n
}

// SetConsoleSink registers fn (or, with nil, removes it) to receive every
// console rendering as the guest emits it, before the retained buffer's
// limit is applied. The sink sees chunks the buffer drops at its cap — that
// is the point: a streaming consumer can deliver unbounded console output
// live while the server retains only DefaultConsoleLimit bytes. The sink
// runs on the simulation goroutine; keep it cheap or apply backpressure
// deliberately.
func (m *Memory) SetConsoleSink(fn func(chunk string)) { m.consoleSink = fn }

// consoleAppend buffers s, dropping it (and marking truncation) once the
// buffer is full. A rendering that straddles the limit is dropped whole, so
// the console never ends mid-number.
func (m *Memory) consoleAppend(s string) {
	if m.consoleSink != nil {
		m.consoleSink(s)
	}
	if m.console.Len()+len(s) > m.consoleLimit {
		m.consoleTrunc = true
		return
	}
	m.console.WriteString(s)
}

// AccessObserver receives completed data accesses to RAM plus the
// synchronization events the SMP device pages expose. Observers see only
// accesses that succeed (faulting accesses never happened architecturally)
// and only RAM traffic — console and device-page words are not memory in
// the data-race sense. The race detector in internal/smp implements this.
type AccessObserver interface {
	// ObserveLoad runs after a successful data load of size bytes at addr.
	ObserveLoad(addr uint32, size int)
	// ObserveStore runs after a successful data store of size bytes at addr.
	ObserveStore(addr uint32, size int)
	// ObserveLock runs when lock word idx transitions: acquired reports a
	// 0→held transition (test-and-set load that returned 0, or a direct
	// nonzero store), !acquired a held→0 release.
	ObserveLock(idx int, acquired bool)
	// ObserveJoinDone runs when a join-page load for handle h returns 0,
	// i.e. the polling core has observed the worker's completion.
	ObserveJoinDone(h uint32)
}

// SetObserver installs (or, with nil, removes) the access observer.
func (m *Memory) SetObserver(o AccessObserver) { m.obs = o }

// ResetCounters zeroes the traffic counters without touching RAM contents.
func (m *Memory) ResetCounters() { m.Reads, m.Writes = 0, 0 }

func (m *Memory) check(kind AccessKind, addr uint32, size int) error {
	if addr%uint32(size) != 0 {
		return &Fault{Kind: kind, Addr: addr, Size: size, Misalign: true}
	}
	if uint64(addr)+uint64(size) > uint64(len(m.ram)) {
		return &Fault{Kind: kind, Addr: addr, Size: size, OutOfMem: true}
	}
	return nil
}

func (m *Memory) isConsole(addr uint32) bool { return addr >= ConsoleBase }

// SetWriteWatch registers fn to run after every store that modifies RAM in
// [lo, hi), receiving the store's address and size. A nil fn clears the
// watch. One watch is supported; registering replaces the previous one.
func (m *Memory) SetWriteWatch(lo, hi uint32, fn func(addr uint32, size int)) {
	m.watchLo, m.watchHi, m.watchFn = lo, hi, fn
}

// notifyWrite reports a completed RAM store to the watch, if one covers it.
func (m *Memory) notifyWrite(addr uint32, size int) {
	if m.watchFn != nil && addr < m.watchHi && addr+uint32(size) > m.watchLo {
		m.watchFn(addr, size)
	}
}

// Load8 reads one byte.
func (m *Memory) Load8(addr uint32) (uint8, error) {
	if err := m.injectFault(AccessLoad, addr, 1); err != nil {
		return 0, err
	}
	if m.isConsole(addr) {
		m.Reads++
		return 1, nil
	}
	if err := m.check(AccessLoad, addr, 1); err != nil {
		return 0, err
	}
	m.Reads++
	if m.obs != nil {
		m.obs.ObserveLoad(addr, 1)
	}
	return m.ram[addr], nil
}

// Load16 reads a big-endian halfword.
func (m *Memory) Load16(addr uint32) (uint16, error) {
	if err := m.injectFault(AccessLoad, addr, 2); err != nil {
		return 0, err
	}
	if m.isConsole(addr) {
		m.Reads += 2
		return 1, nil
	}
	if err := m.check(AccessLoad, addr, 2); err != nil {
		return 0, err
	}
	m.Reads += 2
	if m.obs != nil {
		m.obs.ObserveLoad(addr, 2)
	}
	return uint16(m.ram[addr])<<8 | uint16(m.ram[addr+1]), nil
}

// Load32 reads a big-endian word.
func (m *Memory) Load32(addr uint32) (uint32, error) {
	if err := m.injectFault(AccessLoad, addr, 4); err != nil {
		return 0, err
	}
	if m.isConsole(addr) {
		m.Reads += 4
		return 1, nil
	}
	if m.inDevicePages(addr) && addr%4 == 0 {
		return m.deviceLoad32(addr)
	}
	if err := m.check(AccessLoad, addr, 4); err != nil {
		return 0, err
	}
	m.Reads += 4
	if m.obs != nil {
		m.obs.ObserveLoad(addr, 4)
	}
	return uint32(m.ram[addr])<<24 | uint32(m.ram[addr+1])<<16 |
		uint32(m.ram[addr+2])<<8 | uint32(m.ram[addr+3]), nil
}

// Fetch32 reads an instruction word. It is identical to Load32 except it
// does not count toward data-read traffic and reports fetch faults.
func (m *Memory) Fetch32(addr uint32) (uint32, error) {
	if err := m.injectFault(AccessFetch, addr, 4); err != nil {
		return 0, err
	}
	if err := m.check(AccessFetch, addr, 4); err != nil {
		return 0, err
	}
	return uint32(m.ram[addr])<<24 | uint32(m.ram[addr+1])<<16 |
		uint32(m.ram[addr+2])<<8 | uint32(m.ram[addr+3]), nil
}

// FetchByte reads one instruction byte (used by the variable-length CX
// machine's fetch unit). Not counted as data traffic.
func (m *Memory) FetchByte(addr uint32) (uint8, error) {
	if err := m.injectFault(AccessFetch, addr, 1); err != nil {
		return 0, err
	}
	if err := m.check(AccessFetch, addr, 1); err != nil {
		return 0, err
	}
	return m.ram[addr], nil
}

// Store8 writes one byte.
func (m *Memory) Store8(addr uint32, v uint8) error {
	if err := m.injectFault(AccessStore, addr, 1); err != nil {
		return err
	}
	if m.isConsole(addr) {
		return m.consoleStore(addr, uint32(v), 1)
	}
	if err := m.check(AccessStore, addr, 1); err != nil {
		return err
	}
	m.Writes++
	m.ram[addr] = v
	m.notifyWrite(addr, 1)
	if m.obs != nil {
		m.obs.ObserveStore(addr, 1)
	}
	return nil
}

// Store16 writes a big-endian halfword.
func (m *Memory) Store16(addr uint32, v uint16) error {
	if err := m.injectFault(AccessStore, addr, 2); err != nil {
		return err
	}
	if m.isConsole(addr) {
		return m.consoleStore(addr, uint32(v), 2)
	}
	if err := m.check(AccessStore, addr, 2); err != nil {
		return err
	}
	m.Writes += 2
	m.ram[addr] = uint8(v >> 8)
	m.ram[addr+1] = uint8(v)
	m.notifyWrite(addr, 2)
	if m.obs != nil {
		m.obs.ObserveStore(addr, 2)
	}
	return nil
}

// Store32 writes a big-endian word.
func (m *Memory) Store32(addr uint32, v uint32) error {
	if err := m.injectFault(AccessStore, addr, 4); err != nil {
		return err
	}
	if m.isConsole(addr) {
		return m.consoleStore(addr, v, 4)
	}
	if m.inDevicePages(addr) && addr%4 == 0 {
		return m.deviceStore32(addr, v)
	}
	if err := m.check(AccessStore, addr, 4); err != nil {
		return err
	}
	m.Writes += 4
	m.ram[addr] = uint8(v >> 24)
	m.ram[addr+1] = uint8(v >> 16)
	m.ram[addr+2] = uint8(v >> 8)
	m.ram[addr+3] = uint8(v)
	m.notifyWrite(addr, 4)
	if m.obs != nil {
		m.obs.ObserveStore(addr, 4)
	}
	return nil
}

func (m *Memory) consoleStore(addr, v uint32, size int) error {
	m.Writes += uint64(size)
	switch addr {
	case ConsolePutc:
		m.consoleAppend(string([]byte{uint8(v)}))
	case ConsolePutInt:
		m.consoleAppend(strconv.FormatInt(int64(int32(v)), 10))
	default:
		// Writes to other device addresses are ignored, like a real bus.
	}
	return nil
}

// LoadProgram copies raw bytes into RAM at addr (used by loaders and tests).
func (m *Memory) LoadProgram(addr uint32, data []byte) error {
	if uint64(addr)+uint64(len(data)) > uint64(len(m.ram)) {
		return &Fault{Kind: AccessStore, Addr: addr, Size: len(data), OutOfMem: true}
	}
	copy(m.ram[addr:], data)
	m.notifyWrite(addr, len(data))
	return nil
}

// Bytes exposes a read-only copy of a RAM range for inspection in tests.
func (m *Memory) Bytes(addr uint32, n int) ([]byte, error) {
	if uint64(addr)+uint64(n) > uint64(len(m.ram)) {
		return nil, &Fault{Kind: AccessLoad, Addr: addr, Size: n, OutOfMem: true}
	}
	out := make([]byte, n)
	copy(out, m.ram[addr:])
	return out, nil
}
