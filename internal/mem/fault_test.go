package mem

import (
	"errors"
	"testing"
)

func mustStore(t *testing.T, m *Memory, addr, v uint32) {
	t.Helper()
	if err := m.Store32(addr, v); err != nil {
		t.Fatalf("Store32(%#x): %v", addr, err)
	}
}

// TestFaultPlanNthRead pins the 1-based read countdown: reads before the Nth
// succeed, the Nth faults with Injected set, and reads after it succeed again
// (a one-shot flaky cell, not a dead bus).
func TestFaultPlanNthRead(t *testing.T) {
	m := New(1 << 12)
	mustStore(t, m, 0x100, 42)
	m.SetFaultPlan(&FaultPlan{FailNthRead: 3})
	for i := 1; i <= 5; i++ {
		_, err := m.Load32(0x100)
		if i == 3 {
			var f *Fault
			if !errors.As(err, &f) || !f.Injected || f.Kind != AccessLoad {
				t.Fatalf("read %d: want injected load fault, got %v", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("read %d: unexpected error %v", i, err)
		}
	}
}

// TestFaultPlanNthWrite does the same for the store counter, and checks that
// loads do not advance it.
func TestFaultPlanNthWrite(t *testing.T) {
	m := New(1 << 12)
	m.SetFaultPlan(&FaultPlan{FailNthWrite: 2})
	mustStore(t, m, 0x100, 1)
	if _, err := m.Load32(0x100); err != nil { // must not count as a write
		t.Fatal(err)
	}
	err := m.Store32(0x104, 2)
	var f *Fault
	if !errors.As(err, &f) || !f.Injected || f.Kind != AccessStore {
		t.Fatalf("want injected store fault on 2nd write, got %v", err)
	}
	mustStore(t, m, 0x108, 3) // counter passed: subsequent writes succeed
}

// TestFaultPlanPoisonRange checks the half-open [Lo, Hi) poisoned window,
// including accesses that merely overlap its edge.
func TestFaultPlanPoisonRange(t *testing.T) {
	m := New(1 << 12)
	mustStore(t, m, 0x1FC, 7)
	mustStore(t, m, 0x210, 8)
	m.SetFaultPlan(&FaultPlan{PoisonLo: 0x200, PoisonHi: 0x210})

	if _, err := m.Load32(0x1F8); err != nil {
		t.Fatalf("below range: %v", err)
	}
	if _, err := m.Load32(0x210); err != nil {
		t.Fatalf("at Hi (exclusive): %v", err)
	}
	var f *Fault
	if _, err := m.Load32(0x200); !errors.As(err, &f) || !f.Injected {
		t.Fatalf("inside range: want injected fault, got %v", err)
	}
	if err := m.Store32(0x20C, 9); !errors.As(err, &f) || !f.Injected || f.Kind != AccessStore {
		t.Fatalf("store inside range: want injected fault, got %v", err)
	}
	// Overlap, not containment: with Lo on an odd byte, an aligned 4-byte
	// load that merely touches the first poisoned byte must fault.
	m.SetFaultPlan(&FaultPlan{PoisonLo: 0x203, PoisonHi: 0x210})
	if _, err := m.Load32(0x200); !errors.As(err, &f) || !f.Injected {
		t.Fatalf("straddling Lo: want injected fault, got %v", err)
	}
	if _, err := m.Load16(0x200); err != nil {
		t.Fatalf("load ending before Lo: %v", err)
	}
}

// TestFaultPlanPoisonFetch checks that instruction fetches are exempt unless
// PoisonFetch opts them in.
func TestFaultPlanPoisonFetch(t *testing.T) {
	m := New(1 << 12)
	m.SetFaultPlan(&FaultPlan{PoisonLo: 0x40, PoisonHi: 0x80})
	if _, err := m.Fetch32(0x40); err != nil {
		t.Fatalf("fetch without PoisonFetch: %v", err)
	}
	if _, err := m.FetchByte(0x41); err != nil {
		t.Fatalf("byte fetch without PoisonFetch: %v", err)
	}
	m.SetFaultPlan(&FaultPlan{PoisonLo: 0x40, PoisonHi: 0x80, PoisonFetch: true})
	var f *Fault
	if _, err := m.Fetch32(0x40); !errors.As(err, &f) || !f.Injected || f.Kind != AccessFetch {
		t.Fatalf("poisoned fetch: want injected fetch fault, got %v", err)
	}
	if _, err := m.FetchByte(0x41); !errors.As(err, &f) || !f.Injected {
		t.Fatalf("poisoned byte fetch: want injected fault, got %v", err)
	}
}

// TestSetFaultPlanRearmsCounters checks that re-arming a used plan restarts
// its countdown, and that a nil plan disarms injection entirely.
func TestSetFaultPlanRearmsCounters(t *testing.T) {
	m := New(1 << 12)
	mustStore(t, m, 0x100, 1)
	p := &FaultPlan{FailNthRead: 1}
	m.SetFaultPlan(p)
	if _, err := m.Load32(0x100); err == nil {
		t.Fatal("first read should fault")
	}
	m.SetFaultPlan(p) // counters reset to zero
	if _, err := m.Load32(0x100); err == nil {
		t.Fatal("re-armed plan should fault its first read again")
	}
	m.SetFaultPlan(nil)
	if _, err := m.Load32(0x100); err != nil {
		t.Fatalf("disarmed: %v", err)
	}
}

// TestFaultPlanLeavesConsoleWrites pins that injection happens before the
// console device decode: a FailNthWrite plan can fault a console store too,
// which is what makes FailNthWrite:1 a universal kill switch for benchmarks.
func TestFaultPlanLeavesConsoleWrites(t *testing.T) {
	m := New(1 << 12)
	m.SetFaultPlan(&FaultPlan{FailNthWrite: 1})
	err := m.Store32(ConsolePutInt, 42)
	var f *Fault
	if !errors.As(err, &f) || !f.Injected {
		t.Fatalf("console store under FailNthWrite:1: want injected fault, got %v", err)
	}
	if got := m.Console(); got != "" {
		t.Fatalf("faulted console store must not emit output, got %q", got)
	}
}
