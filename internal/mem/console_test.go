package mem

import (
	"strings"
	"testing"
)

// TestConsoleLimitDropsAndMarks pins the bounded-console contract: output
// beyond the limit is dropped, the buffer is marked truncated, and what was
// buffered before the limit survives intact.
func TestConsoleLimitDropsAndMarks(t *testing.T) {
	m := New(1 << 12)
	m.SetConsoleLimit(8)
	for i := 0; i < 20; i++ {
		if err := m.Store32(ConsolePutc, uint32('a')); err != nil {
			t.Fatalf("putc %d: %v", i, err)
		}
	}
	if got := m.Console(); got != strings.Repeat("a", 8) {
		t.Errorf("console = %q, want 8 a's", got)
	}
	if !m.ConsoleTruncated() {
		t.Error("ConsoleTruncated = false after overflowing the limit")
	}
}

// TestConsoleLimitWholeRendering checks a PutInt rendering that straddles
// the limit is dropped whole rather than split mid-number.
func TestConsoleLimitWholeRendering(t *testing.T) {
	m := New(1 << 12)
	m.SetConsoleLimit(6)
	if err := m.Store32(ConsolePutInt, 1234); err != nil {
		t.Fatal(err)
	}
	// 4 bytes buffered; "5678" would exceed 6 and must vanish entirely.
	if err := m.Store32(ConsolePutInt, 5678); err != nil {
		t.Fatal(err)
	}
	if got := m.Console(); got != "1234" {
		t.Errorf("console = %q, want %q", got, "1234")
	}
	if !m.ConsoleTruncated() {
		t.Error("ConsoleTruncated = false after a dropped rendering")
	}
}

// TestConsoleDefaultLimit checks normal output is untouched and unmarked.
func TestConsoleDefaultLimit(t *testing.T) {
	m := New(1 << 12)
	if err := m.Store32(ConsolePutInt, 0xFFFFFFFF); err != nil { // -1 signed
		t.Fatal(err)
	}
	if err := m.Store32(ConsolePutc, uint32('\n')); err != nil {
		t.Fatal(err)
	}
	if got := m.Console(); got != "-1\n" {
		t.Errorf("console = %q, want %q", got, "-1\n")
	}
	if m.ConsoleTruncated() {
		t.Error("ConsoleTruncated = true without hitting the limit")
	}
	// Writes past the dropped point still count as bus traffic.
	if m.Writes != 8 {
		t.Errorf("Writes = %d, want 8", m.Writes)
	}
}

// TestSetConsoleLimitZeroRestoresDefault documents the n <= 0 contract.
func TestSetConsoleLimitZeroRestoresDefault(t *testing.T) {
	m := New(1 << 12)
	m.SetConsoleLimit(4)
	m.SetConsoleLimit(0)
	if m.consoleLimit != DefaultConsoleLimit {
		t.Errorf("consoleLimit = %d, want DefaultConsoleLimit", m.consoleLimit)
	}
}
