// Quickstart: compile one Cm program for all three machines of the RISC I
// evaluation and compare what each one did.
package main

import (
	"fmt"
	"log"

	"risc1"
)

const program = `
// binomial(n, k) by Pascal's rule: all procedure calls and additions,
// exactly the workload the RISC I design targets.
int binom(int n, int k) {
	if (k == 0 || k == n) return 1;
	return binom(n - 1, k - 1) + binom(n - 1, k);
}
int main() {
	putint(binom(16, 8));
	return 0;
}`

func main() {
	targets := []struct {
		name string
		t    risc1.Target
	}{
		{"RISC I (register windows)", risc1.RISCWindowed},
		{"RISC I (flat, no windows)", risc1.RISCFlat},
		{"CX (microcoded CISC)", risc1.CISC},
	}
	fmt.Println("binom(16, 8) on the three machines of the RISC I evaluation:")
	fmt.Println()
	for _, tgt := range targets {
		out, err := risc1.BuildAndRun(program, tgt.t)
		if err != nil {
			log.Fatalf("%s: %v", tgt.name, err)
		}
		fmt.Printf("%-28s -> %s\n", tgt.name, out.Console)
		fmt.Printf("   %d instructions, %d cycles, %v simulated, %d code bytes\n",
			out.Instructions, out.Cycles, out.Time, out.CodeBytes)
	}
	fmt.Println()
	fmt.Println("Note the cycle counts: RISC I executes more instructions but")
	fmt.Println("each takes one or two 400ns cycles; CX executes fewer, each")
	fmt.Println("microcoded over many 200ns microcycles.")
}
