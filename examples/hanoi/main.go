// Hanoi: the procedure-call story of the RISC I paper in one program.
// Towers of Hanoi is nothing but procedure calls, so it shows exactly what
// the overlapping register windows buy — and what a conventional calling
// convention (flat RISC) or a microcoded CALLS instruction (CX) costs.
package main

import (
	"fmt"
	"log"

	"risc1"
)

func main() {
	src, ok := risc1.BenchmarkSource("hanoi")
	if !ok {
		log.Fatal("hanoi benchmark missing")
	}

	fmt.Println("Towers of Hanoi (14 discs = 16383 moves, ~32k calls):")
	fmt.Println()
	fmt.Printf("%-12s %12s %12s %14s %12s\n",
		"machine", "sim time", "calls", "data traffic", "B/call")
	for _, tgt := range []struct {
		name string
		t    risc1.Target
	}{
		{"windows", risc1.RISCWindowed},
		{"flat", risc1.RISCFlat},
		{"cisc", risc1.CISC},
	} {
		out, err := risc1.BuildAndRun(src, tgt.t)
		if err != nil {
			log.Fatalf("%s: %v", tgt.name, err)
		}
		traffic := out.DataReadBytes + out.DataWriteBytes
		perCall := float64(traffic) / float64(out.Calls)
		fmt.Printf("%-12s %12v %12d %13dB %12.1f\n",
			tgt.name, out.Time, out.Calls, traffic, perCall)
	}
	fmt.Println()
	fmt.Println("The windowed machine slides a register window on each call —")
	fmt.Println("no saves, no restores, almost no data-memory traffic. The flat")
	fmt.Println("convention stores and reloads registers around every call; the")
	fmt.Println("CISC's CALLS pushes a whole frame through memory each time.")
}
