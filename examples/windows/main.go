// Windows: how many register windows are enough? This example sweeps the
// hardware window count against a deeply recursive workload and prints the
// overflow-trap behaviour — the study behind the paper's choice of 8.
package main

import (
	"fmt"
	"log"

	"risc1"
)

// Fibonacci's call tree oscillates across the whole depth range, making it
// a demanding (but fair) window workload.
const program = `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() { putint(fib(17)); return 0; }`

func main() {
	asmText, err := risc1.CompileCm(program, risc1.RISCWindowed, risc1.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fib(17): register-window sweep (depth reaches 17)")
	fmt.Println()
	fmt.Printf("%8s %14s %12s %12s %12s\n",
		"windows", "phys regs", "calls", "overflows", "sim time")
	for _, n := range []int{3, 4, 6, 8, 12, 16, 20} {
		m := risc1.NewMachine(risc1.MachineConfig{Windows: n})
		if err := m.LoadAssembly(asmText); err != nil {
			log.Fatal(err)
		}
		if err := m.Run(); err != nil {
			log.Fatal(err)
		}
		info := m.Info()
		fmt.Printf("%8d %14d %12d %12d %12v\n",
			n, 10+16*n, info.Calls, info.WindowOverflows, info.Time)
	}
	fmt.Println()
	fmt.Println("Overflows collapse as windows are added; past the workload's")
	fmt.Println("stack depth they vanish entirely. The paper chose 8 windows —")
	fmt.Println("138 registers — as the knee of this curve for real C programs.")
}
