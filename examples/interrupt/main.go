// Interrupt: the trap architecture of RISC I in miniature. An external
// interrupt arrives mid-computation; the handler enters through CALLINT —
// which slides to a fresh register window (so the interrupted procedure's
// registers are untouched without saving a single one) and captures the
// restart PC — does its work, and resumes with RETINT.
package main

import (
	"fmt"
	"log"

	"risc1"
)

const source = `
	.entry main
; main counts upward forever in r1 (a global would also work); the
; interrupt handler snapshots the count and rings the console.
main:
	add r0,#0,r1
loop:
	add r1,#1,r1
	b loop
	nop

handler:
	callint r16          ; fresh window; r16 := PC of the interrupted inst
	getpsw r17           ; look around: PSW of the interrupted context
	stl r1,(r0)#-252     ; r1 is a global: print the count so far
	add r0,#'!',r18
	stl r18,(r0)#-256
	retint r16,#0        ; resume exactly where the interrupt hit
	nop
`

func main() {
	m := risc1.NewMachine(risc1.MachineConfig{})
	if err := m.LoadAssembly(source); err != nil {
		log.Fatal(err)
	}
	vec, ok := m.Symbol("handler")
	if !ok {
		log.Fatal("no handler symbol")
	}

	// Let the main loop run a while, interrupt it, run some more...
	for round := 1; round <= 3; round++ {
		for i := 0; i < 1000*round; i++ {
			if err := m.Step(); err != nil {
				log.Fatal(err)
			}
		}
		m.Interrupt(vec)
	}
	for i := 0; i < 100; i++ {
		if err := m.Step(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("console after three interrupts:", m.Console())
	fmt.Printf("counter kept counting: r1 = %d\n", m.Reg(1))
	fmt.Println()
	fmt.Println("Each interrupt entered through CALLINT: a window slide gave the")
	fmt.Println("handler fresh registers with zero save/restore traffic, and the")
	fmt.Println("interrupted loop resumed exactly where it left off via RETINT.")
}
