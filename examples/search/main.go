// Search: assembly-level programming of the RISC I machine. A hand-written
// string-search routine shows the ISA in action — delayed branches with
// useful instructions in the slots, the LOW/HIGH parameter overlap, and the
// load/store discipline — then the program is disassembled and run.
package main

import (
	"fmt"
	"log"

	"risc1"
)

// find(text, pat) returns the index of pat in text or -1. Arguments arrive
// in the HIGH registers (r26, r27) through the window overlap; the result
// returns through the same registers. Note the delay slots: several hold
// real work rather than NOPs.
const source = `
	.entry main
main:
	la text,r10          ; outgoing arg 0 (our LOW = callee's HIGH)
	la pat,r11           ; outgoing arg 1
	callr r25,find
	nop
	stl r10,(r0)#-252    ; putint(result)
	add r0,#'\n',r16
	stl r16,(r0)#-256    ; putchar
	ret r25,#8
	nop

find:                        ; r26 = text, r27 = pat
	add r0,#0,r16        ; i = 0
outer:
	add r26,r16,r17      ; &text[i]
	ldbu (r17)#0,r18
	cmp r18,#0           ; end of text: not found
	beq fail
	add r0,#0,r19        ; j = 0  (delay slot: always safe here)
inner:
	add r27,r19,r20      ; &pat[j]
	ldbu (r20)#0,r21
	cmp r21,#0           ; end of pattern: match at i
	beq found
	add r17,r19,r22      ; &text[i+j]  (delay slot does real work)
	ldbu (r22)#0,r22
	cmp r22,r21
	bne next             ; mismatch: advance i
	nop
	b inner
	add r19,#1,r19       ; j++ in the delay slot
next:
	b outer
	add r16,#1,r16       ; i++ in the delay slot
found:
	mov r16,r26          ; return i
	ret r25,#8
	nop
fail:
	add r0,#-1,r26       ; return -1
	ret r25,#8
	nop

	.align 4
text:	.asciz "the quick brown fox jumps over the lazy dog"
	.align 4
pat:	.asciz "jumps"
`

func main() {
	fmt.Println("--- disassembly (first lines) ---")
	listing, err := risc1.Disassemble(source)
	if err != nil {
		log.Fatal(err)
	}
	for i, line := 0, 0; i < len(listing) && line < 12; i++ {
		fmt.Print(string(listing[i]))
		if listing[i] == '\n' {
			line++
		}
	}
	fmt.Println("...")

	m := risc1.NewMachine(risc1.MachineConfig{})
	if err := m.LoadAssembly(source); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- output ---\nindex of \"jumps\": %s", m.Console())

	info := m.Info()
	fmt.Printf("--- statistics ---\n%d instructions in %d cycles (%.2f CPI), %v simulated\n",
		info.Instructions, info.Cycles,
		float64(info.Cycles)/float64(info.Instructions), info.Time)
}
